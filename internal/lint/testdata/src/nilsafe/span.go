package nilsafe

// The fixtures below mirror the obs span-ring and flight-recorder
// shapes: ring types whose Push/Drain run on hot paths where a disabled
// registry hands every caller a nil receiver.

// SpanBuf is a bounded trace buffer.
//
// bwlint:nilsafe
type SpanBuf struct {
	buf  []int64
	next int
}

// Push guards first, as the contract demands.
func (r *SpanBuf) Push(v int64) {
	if r == nil {
		return
	}
	r.buf[r.next%len(r.buf)] = v
	r.next++
}

// Drain forgets the guard even though Push has one — exactly the
// one-lucky-method failure the check exists for.
func (r *SpanBuf) Drain() []int64 { // want "does not begin with an `if r == nil` guard"
	out := append([]int64(nil), r.buf[:r.next]...)
	r.next = 0
	return out
}

// Flight is a snapshot recorder. The nil *Flight is a valid no-op.
type Flight struct {
	snaps []int64
}

// Record discards its receiver, so no guard can ever run.
func (_ *Flight) Record() { // want "discards its receiver"
}

// Freeze guards with a compound condition.
func (f *Flight) Freeze(reason string) {
	if f == nil || reason == "" {
		return
	}
	f.snaps = append(f.snaps, int64(len(reason)))
}
