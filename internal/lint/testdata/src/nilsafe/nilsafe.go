// Package nilsafe is golden-test input for the nil-safe check: types
// documented as nil-receiver-safe whose exported methods must begin
// with a nil guard.
package nilsafe

// Meter is a sample counter. The nil *Meter is a valid no-op.
type Meter struct {
	n int64
}

// Bad relies on luck instead of a guard.
func (m *Meter) Bad() { // want "does not begin with an `if m == nil` guard"
	m.n++
}

// Good guards first.
func (m *Meter) Good() {
	if m == nil {
		return
	}
	m.n++
}

// Add guards inside a compound condition, which also counts.
func (m *Meter) Add(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.n += n
}

// reset is unexported: the contract covers the exported API only.
func (m *Meter) reset() {
	m.n = 0
}

// Probe is nil-receiver-safe.
type Probe struct {
	v int64
}

// Value has a value receiver, which dereferences before any guard could
// run.
func (p Probe) Value() int64 { // want "value receiver"
	return p.v
}

// Plain has no nil-safety claim, so its methods are unconstrained.
type Plain struct {
	n int64
}

// Touch needs no guard.
func (p *Plain) Touch() {
	p.n++
}
