// Package broken fails type checking on purpose: the loader must keep
// the package (recording the errors) so syntactic and partially-typed
// checks still run over it.
//
// bwlint:deterministic
package broken

import "time"

func now() int64 {
	return time.Now().UnixNano() // still detected despite the type error below
}

func boom() {
	undefinedFunction()
}
