// Package confined exercises the shard-confinement check: fields
// annotated "confined to <entry>" may only be touched inside the
// entry's spawn-free call closure, in constructors, or under the owning
// struct's exclusive lock.
package confined

import "sync"

type shard struct {
	mu      sync.Mutex
	scratch []int // confined to shard.tick
	ghost   int   // confined to vanished; want "no such function"
}

// newShard may touch the field: the value is not shared yet.
func newShard(n int) *shard {
	return &shard{scratch: make([]int, n)}
}

// tick is the confinement entry; its own accesses are legal.
func (s *shard) tick() {
	for i := range s.scratch {
		s.scratch[i] = 0
	}
	_ = s.sum()
	go func() {
		s.scratch[0] = 1 // want "spawned inside"
	}()
}

// sum is inside tick's spawn-free closure, but leak also calls it from
// outside the region — the shared-helper violation.
func (s *shard) sum() int {
	t := 0
	for _, v := range s.scratch { // want "also called from"
		t += v
	}
	return t
}

func (s *shard) leak() int { return s.sum() }

// reset touches the field outside the region without the lock.
func (s *shard) reset() {
	s.scratch = s.scratch[:0] // want "outside its spawn-free call closure"
}

// drain uses the escape valve: the owning struct's exclusive lock.
func (s *shard) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scratch = s.scratch[:0]
}

type table struct {
	mu   sync.RWMutex
	rows []int // confined to table.rebuild
}

func (t *table) rebuild() {
	t.rows = t.rows[:0]
}

// snapshot holds only the read lock, which is not enough to escape
// confinement.
func (t *table) snapshot() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows) // want "does not hold t.mu"
}

// rewrite holds the exclusive lock: legal.
func (t *table) rewrite(rows []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows[:0], rows...)
}
