// Package emit is golden-test input for the emit-on-change check: struct
// types with a Rate/Rates method and bw.Rate allocation fields, with and
// without observer emissions on their write paths.
package emit

import "dynbw/internal/bw"

// observer stands in for obs.Observer; the check is syntactic and keys
// on calls to a method named Event (or an emit* helper).
type observer interface {
	Event(kind int)
}

// BadPolicy writes its allocation in an exported method without any
// emission.
type BadPolicy struct {
	o   observer
	cur bw.Rate
}

func (p *BadPolicy) Rate(t bw.Tick) bw.Rate {
	p.cur = 8 // want "exported method BadPolicy.Rate writes allocation field"
	return p.cur
}

// GoodPolicy pairs every write with an Event call.
type GoodPolicy struct {
	o   observer
	cur bw.Rate
}

func (p *GoodPolicy) Rate(t bw.Tick) bw.Rate {
	p.cur = 8
	p.o.Event(1)
	return p.cur
}

// HelperPolicy hides the write in an unexported helper whose only
// method caller does not emit either.
type HelperPolicy struct {
	o   observer
	cur bw.Rate
}

func (p *HelperPolicy) Rate(t bw.Tick) bw.Rate {
	p.reset()
	return p.cur
}

func (p *HelperPolicy) reset() {
	p.cur = 0 // want "caller Rate does not emit"
}

// CoveredPolicy also writes in a helper, but its caller emits — the
// one-level rule accepts it.
type CoveredPolicy struct {
	o   observer
	cur bw.Rate
}

func (p *CoveredPolicy) Rate(t bw.Tick) bw.Rate {
	p.reset()
	p.o.Event(2)
	return p.cur
}

func (p *CoveredPolicy) reset() {
	p.cur = 0
}

// EmitHelperPolicy emits through an emit* helper instead of a direct
// Event call.
type EmitHelperPolicy struct {
	o   observer
	cur bw.Rate
}

func (p *EmitHelperPolicy) Rate(t bw.Tick) bw.Rate {
	p.cur = 4
	p.emitChange()
	return p.cur
}

func (p *EmitHelperPolicy) emitChange() {
	if p.o != nil {
		p.o.Event(3)
	}
}

// CtorPolicy initializes its allocation in a helper called only from a
// constructor: the initial allocation is not a change, so no emission is
// required.
type CtorPolicy struct {
	o   observer
	cur []bw.Rate
}

// NewCtorPolicy builds a policy with a zeroed allocation.
func NewCtorPolicy(k int) *CtorPolicy {
	p := &CtorPolicy{cur: make([]bw.Rate, k)}
	p.init()
	return p
}

func (p *CtorPolicy) init() {
	for i := range p.cur {
		p.cur[i] = 0
	}
}

func (p *CtorPolicy) Rates(t bw.Tick) []bw.Rate {
	return p.cur
}

// NotAnAllocator has a bw.Rate field but no Rate/Rates method: the
// invariant does not apply.
type NotAnAllocator struct {
	cur bw.Rate
}

func (n *NotAnAllocator) Set(r bw.Rate) {
	n.cur = r
}

// BadRouter mirrors the routing tier's shape: a Place method guards a
// per-link bw.Rate load vector. A load write without an emission is a
// silent reroute — it corrupts the reconfiguration cost measure the
// same way a silent allocation change corrupts the change count.
type BadRouter struct {
	o    observer
	load []bw.Rate
}

func (r *BadRouter) Place(id int) int {
	r.load[0] += 2 // want "exported method BadRouter.Place writes allocation field"
	return 0
}

// GoodRouter is the internal/route idiom: unexported writers whose
// method callers each emit through an emit* helper.
type GoodRouter struct {
	o    observer
	load []bw.Rate
}

func (r *GoodRouter) Place(id int) int {
	r.place(id)
	r.emitPlace(id)
	return 0
}

func (r *GoodRouter) Rebalance() {
	r.place(1)
	r.emitReroute(1)
}

func (r *GoodRouter) place(id int) {
	r.load[0]++
}

func (r *GoodRouter) emitPlace(id int) {
	if r.o != nil {
		r.o.Event(4)
	}
}

func (r *GoodRouter) emitReroute(id int) {
	if r.o != nil {
		r.o.Event(5)
	}
}
