// Package determ exercises the determinism check: a package whose
// package comment carries the marker below must not consult the wall
// clock, the global math/rand source, or unordered map iteration.
//
// bwlint:deterministic
package determ

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func draw() int {
	return rand.Intn(10) // want "global math/rand"
}

// seeded uses the sanctioned route: an explicit generator.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// keys is the sanctioned sort-the-keys idiom.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func total(m map[string]int) int {
	t := 0
	for _, v := range m { // want "range over a map"
		t += v
	}
	return t
}

// logged acknowledges its wall-clock read in place: no finding.
func logged() int64 {
	// bwlint:detok timing is diagnostic only, not on the output path
	return time.Now().UnixNano()
}
