package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces the repo's mutex-annotation convention: a struct
// field whose declaration comment says "guarded by <mu>" may only be
// accessed
//
//   - in a function whose body locks the same mutex on the same base
//     expression (x.mu.Lock() / x.mu.RLock(), with defer-unlock as
//     usual),
//   - in a constructor (a function whose results include the owning
//     struct type — the value is not shared yet), or
//   - in a function whose doc comment declares the lock as a
//     precondition ("... must hold <mu>", the existing convention in
//     gateway/client.go, or an explicit "bwlint:holds <mu>").
//
// The gateway, load and obs types already followed this convention
// informally; the annotations make it machine-checked, turning latent
// data races into lint findings instead of -race lottery tickets.
//
// The lock check is containment-based (the function must contain a
// matching Lock call), not a lockset dataflow analysis; it is precise
// enough for this codebase's lock-at-entry style and errs toward
// false negatives, never toward noise.
type GuardedBy struct{}

// NewGuardedBy returns the check (annotation-driven, applies wherever
// annotations appear).
func NewGuardedBy() *GuardedBy { return &GuardedBy{} }

// Name implements Check.
func (*GuardedBy) Name() string { return "guarded-by" }

// Doc implements Check.
func (*GuardedBy) Doc() string {
	return `fields annotated "guarded by <mu>" may only be touched with that mutex held`
}

var (
	// guardedRe accepts a bare mutex name ("guarded by mu") or a
	// struct-qualified one ("guarded by shard.mu"); the qualifier, when
	// present, must name the owning struct type.
	guardedRe = regexp.MustCompile(`guarded by ((?:[A-Za-z_]\w*\.)?[A-Za-z_]\w*)`)
	// holdsRe matches declared lock preconditions in function docs.
	holdsRe = regexp.MustCompile(`(?i)(?:must hold|holds?)\s+(?:[A-Za-z_]\w*\.)*([A-Za-z_]\w*)|bwlint:holds\s+([A-Za-z_]\w*)`)
)

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	fieldName  string
	mutex      string
}

// Run implements Check.
func (c *GuardedBy) Run(prog *Program, report Reporter) {
	for _, pkg := range prog.Pkgs {
		c.runPackage(pkg, report)
	}
}

func (c *GuardedBy) runPackage(pkg *Package, report Reporter) {
	guarded := map[types.Object]guardInfo{}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if isMutexType(fld.Type) {
					for _, name := range fld.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu := fieldGuardAnnotation(fld)
				if mu == "" {
					continue
				}
				// A struct-qualified annotation ("guarded by shard.mu")
				// must name the owning struct; the mutex lookup then uses
				// the bare field name.
				if dot := strings.IndexByte(mu, '.'); dot >= 0 {
					if qual := mu[:dot]; qual != ts.Name.Name {
						report(fld.Pos(), "field %s.%s is annotated guarded by %q, but the owning struct is %s",
							ts.Name.Name, fieldNames(fld), mu, ts.Name.Name)
						continue
					}
					mu = mu[dot+1:]
				}
				if !mutexes[mu] {
					report(fld.Pos(), "field %s.%s is annotated guarded by %q, but %s has no sync.Mutex/RWMutex field of that name",
						ts.Name.Name, fieldNames(fld), mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			heldByDoc := declaredHeld(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := selectedObject(pkg.Info, sel)
				g, ok := guarded[obj]
				if !ok {
					return true
				}
				if constructs(fd, g.structName) || heldByDoc[g.mutex] {
					return true
				}
				base := types.ExprString(sel.X)
				if !containsLock(fd.Body, base, g.mutex) {
					report(sel.Pos(), "%s.%s is guarded by %s, but %s neither locks %s.%s nor declares it held",
						g.structName, g.fieldName, g.mutex, fd.Name.Name, base, g.mutex)
				}
				return true
			})
		}
	}
}

// fieldGuardAnnotation extracts the mutex name from a field's doc or
// line comment.
func fieldGuardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether a field type spells a sync mutex.
func isMutexType(e ast.Expr) bool {
	switch types.ExprString(e) {
	case "sync.Mutex", "sync.RWMutex", "*sync.Mutex", "*sync.RWMutex":
		return true
	}
	return false
}

func fieldNames(fld *ast.Field) string {
	names := make([]string, len(fld.Names))
	for i, n := range fld.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// selectedObject resolves a selector to the object it denotes (field
// selections come from Selections, qualified identifiers from Uses).
func selectedObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// constructs reports whether fd's results include structName (by value
// or pointer) — the constructor exemption.
func constructs(fd *ast.FuncDecl, structName string) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := types.ExprString(res.Type)
		t = strings.TrimPrefix(t, "*")
		if t == structName || strings.HasSuffix(t, "."+structName) {
			return true
		}
	}
	return false
}

// declaredHeld parses lock preconditions out of a function's doc
// comment ("Callers must hold c.mu", "bwlint:holds mu").
func declaredHeld(fd *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	if fd.Doc == nil {
		return held
	}
	for _, m := range holdsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		for _, name := range m[1:] {
			if name != "" {
				held[name] = true
			}
		}
	}
	return held
}

// containsLock reports whether body contains base.mu.Lock() or
// base.mu.RLock() with the same rendered base expression.
func containsLock(body *ast.BlockStmt, base, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mutex {
			return true
		}
		if types.ExprString(muSel.X) == base {
			found = true
			return false
		}
		return true
	})
	return found
}
