package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces the repo's mutex-annotation convention: a struct
// field whose declaration comment says "guarded by <mu>" may only be
// accessed
//
//   - in a function whose body locks the same mutex on the same base
//     expression (x.mu.Lock() / x.mu.RLock(), with defer-unlock as
//     usual) — for sync.RWMutex the strength matters: a read access is
//     legal under RLock, but a write (assignment, ++/--, delete) with
//     only the read lock held is a finding,
//   - in a constructor (a function whose results include the owning
//     struct type — the value is not shared yet), or
//   - in a function whose doc comment declares the lock as a
//     precondition ("... must hold <mu>", the existing convention in
//     gateway/client.go, or an explicit "bwlint:holds <mu>").
//
// The gateway, load and obs types already followed this convention
// informally; the annotations make it machine-checked, turning latent
// data races into lint findings instead of -race lottery tickets.
//
// The lock check is containment-based (the function must contain a
// matching Lock call), not a lockset dataflow analysis; it is precise
// enough for this codebase's lock-at-entry style and errs toward
// false negatives, never toward noise.
type GuardedBy struct{}

// NewGuardedBy returns the check (annotation-driven, applies wherever
// annotations appear).
func NewGuardedBy() *GuardedBy { return &GuardedBy{} }

// Name implements Check.
func (*GuardedBy) Name() string { return "guarded-by" }

// Doc implements Check.
func (*GuardedBy) Doc() string {
	return `fields annotated "guarded by <mu>" may only be touched with that mutex held`
}

var (
	// guardedRe accepts a bare mutex name ("guarded by mu") or a
	// struct-qualified one ("guarded by shard.mu"); the qualifier, when
	// present, must name the owning struct type.
	guardedRe = regexp.MustCompile(`guarded by ((?:[A-Za-z_]\w*\.)?[A-Za-z_]\w*)`)
	// holdsRe matches declared lock preconditions in function docs.
	holdsRe = regexp.MustCompile(`(?i)(?:must hold|holds?)\s+(?:[A-Za-z_]\w*\.)*([A-Za-z_]\w*)|bwlint:holds\s+([A-Za-z_]\w*)`)
)

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	fieldName  string
	mutex      string
}

// Run implements Check.
func (c *GuardedBy) Run(prog *Program, report Reporter) {
	for _, pkg := range prog.Pkgs {
		c.runPackage(pkg, report)
	}
}

func (c *GuardedBy) runPackage(pkg *Package, report Reporter) {
	guarded := map[types.Object]guardInfo{}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if isMutexType(fld.Type) {
					for _, name := range fld.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu := fieldGuardAnnotation(fld)
				if mu == "" {
					continue
				}
				// A struct-qualified annotation ("guarded by shard.mu")
				// must name the owning struct; the mutex lookup then uses
				// the bare field name.
				if dot := strings.IndexByte(mu, '.'); dot >= 0 {
					if qual := mu[:dot]; qual != ts.Name.Name {
						report(fld.Pos(), "field %s.%s is annotated guarded by %q, but the owning struct is %s",
							ts.Name.Name, fieldNames(fld), mu, ts.Name.Name)
						continue
					}
					mu = mu[dot+1:]
				}
				if !mutexes[mu] {
					report(fld.Pos(), "field %s.%s is annotated guarded by %q, but %s has no sync.Mutex/RWMutex field of that name",
						ts.Name.Name, fieldNames(fld), mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			heldByDoc := declaredHeld(fd)
			writes := writeTargets(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := selectedObject(pkg.Info, sel)
				g, ok := guarded[obj]
				if !ok {
					return true
				}
				if constructs(fd, g.structName) || heldByDoc[g.mutex] {
					return true
				}
				base := types.ExprString(sel.X)
				switch strength := lockStrength(fd.Body, base, g.mutex); {
				case strength == lockNone:
					report(sel.Pos(), "%s.%s is guarded by %s, but %s neither locks %s.%s nor declares it held",
						g.structName, g.fieldName, g.mutex, fd.Name.Name, base, g.mutex)
				case strength == lockRead && writes[sel]:
					report(sel.Pos(), "%s.%s is guarded by %s, but %s writes it holding only the read lock; writes require %s.%s.Lock()",
						g.structName, g.fieldName, g.mutex, fd.Name.Name, base, g.mutex)
				}
				return true
			})
		}
	}
}

// fieldGuardAnnotation extracts the mutex name from a field's doc or
// line comment.
func fieldGuardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether a field type spells a sync mutex.
func isMutexType(e ast.Expr) bool {
	switch types.ExprString(e) {
	case "sync.Mutex", "sync.RWMutex", "*sync.Mutex", "*sync.RWMutex":
		return true
	}
	return false
}

func fieldNames(fld *ast.Field) string {
	names := make([]string, len(fld.Names))
	for i, n := range fld.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// selectedObject resolves a selector to the object it denotes (field
// selections come from Selections, qualified identifiers from Uses).
func selectedObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// constructs reports whether fd's results include structName (by value
// or pointer) — the constructor exemption.
func constructs(fd *ast.FuncDecl, structName string) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := types.ExprString(res.Type)
		t = strings.TrimPrefix(t, "*")
		if t == structName || strings.HasSuffix(t, "."+structName) {
			return true
		}
	}
	return false
}

// declaredHeld parses lock preconditions out of a function's doc
// comment ("Callers must hold c.mu", "bwlint:holds mu").
func declaredHeld(fd *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	if fd.Doc == nil {
		return held
	}
	for _, m := range holdsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		for _, name := range m[1:] {
			if name != "" {
				held[name] = true
			}
		}
	}
	return held
}

// Lock strengths, ordered so comparisons read naturally: an exclusive
// Lock satisfies any requirement, an RLock satisfies reads only.
const (
	lockNone = iota
	lockRead
	lockExclusive
)

// lockStrength scans body for base.mu.Lock() / base.mu.RLock() calls
// with the same rendered base expression and returns the strongest one
// found.
func lockStrength(body *ast.BlockStmt, base, mutex string) int {
	strength := lockNone
	ast.Inspect(body, func(n ast.Node) bool {
		if strength == lockExclusive {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var s int
		switch sel.Sel.Name {
		case "Lock":
			s = lockExclusive
		case "RLock":
			s = lockRead
		default:
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mutex || types.ExprString(muSel.X) != base {
			return true
		}
		if s > strength {
			strength = s
		}
		return true
	})
	return strength
}

// writeTargets collects the selector expressions a body writes:
// assignment left-hand sides (unwrapping element and pointer writes
// through the field), ++/-- operands, and the map argument of delete.
func writeTargets(body *ast.BlockStmt) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		switch t := e.(type) {
		case *ast.ParenExpr:
			mark(t.X)
		case *ast.IndexExpr:
			mark(t.X)
		case *ast.StarExpr:
			mark(t.X)
		case *ast.SelectorExpr:
			writes[t] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
				mark(st.Args[0])
			}
		}
		return true
	})
	return writes
}
