// Package lint is the project-specific static-analysis suite behind
// cmd/bwlint. It loads every package of the module with the standard
// library's go/parser + go/types (no external tooling) and runs a
// pluggable set of checks that machine-verify the repo's core
// invariants:
//
//   - emit-on-change: allocation changes are the paper's cost measure,
//     so a core policy that mutates its allocation fields must emit an
//     observer event on the same path — silent writes corrupt every
//     competitive-ratio measurement.
//   - guarded-by: struct fields annotated "guarded by <mu>" may only
//     be touched while that mutex is held (or from constructors and
//     functions that document the lock as a precondition).
//   - nil-safe: exported methods of obs instrument types documented as
//     nil-receiver-safe must actually begin with a nil-receiver guard,
//     because the metrics registry is optional everywhere.
//   - unit-hygiene: bw.Rate, bw.Bits and bw.Tick are int64 aliases the
//     compiler cannot tell apart; crossings (rate x ticks, bits /
//     ticks, mixed comparisons) must go through the units.go helpers.
//
// Layer 2 adds call-graph checks built on shared per-function summaries
// (callees, spawn points, lock operations, allocation sites):
//
//   - hotpath: functions annotated bwlint:hotpath must be transitively
//     free of heap-allocating constructs; bwlint:allocok escapes are
//     counted, and the load-bearing roots are required so the
//     annotation cannot silently disappear.
//   - shard-confinement: fields annotated "confined to <entry>" may
//     only be touched inside the entry's spawn-free call closure,
//     constructors, or under the owner's exclusive lock.
//   - determinism: golden-producing packages marked
//     bwlint:deterministic must not call time.Now, use the global
//     math/rand source, or range over maps unordered.
//
// Each finding is reported as "file:line:col: [check] message"; any
// finding makes the driver exit non-zero, which is how CI enforces the
// invariants on every PR.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Reporter receives one violation at a source position.
type Reporter func(pos token.Pos, format string, args ...any)

// Check is one analysis pass. Run receives the whole loaded program and
// reports violations for the listed (linted) packages only; checks may
// read non-listed dependency packages for context (e.g. declared units).
type Check interface {
	// Name is the short identifier used in output and -checks filters.
	Name() string
	// Doc is a one-line description of the protected invariant.
	Doc() string
	Run(prog *Program, report Reporter)
}

// Stater is implemented by checks that track run statistics (escape
// hatches in effect); bwlint -v prints them after each run.
type Stater interface {
	// Stats returns a one-line summary of the last Run.
	Stats() string
}

// Checks returns every check in its default configuration.
func Checks() []Check {
	return []Check{
		NewDeterminism(),
		NewEmitOnChange(),
		NewGuardedBy(),
		NewHotpath(),
		NewNilSafe(),
		NewShardConfinement(),
		NewUnitHygiene(),
	}
}

// LoadProgram loads patterns under the module rooted at root once, for
// sharing across checks and output formats.
func LoadProgram(root string, patterns []string) (*Program, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	return loader.Load(patterns...)
}

// Select filters checks by comma-separated names ("" keeps all).
func Select(checks []Check, names string) ([]Check, error) {
	if names == "" {
		return checks, nil
	}
	byName := make(map[string]Check, len(checks))
	for _, c := range checks {
		byName[c.Name()] = c
	}
	var out []Check
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, checkNames(checks))
		}
		out = append(out, c)
	}
	return out, nil
}

func checkNames(checks []Check) string {
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name()
	}
	return strings.Join(names, ", ")
}

// Run loads patterns under the module rooted at root and applies checks,
// returning findings sorted by position.
func Run(root string, patterns []string, checks []Check) ([]Finding, error) {
	prog, err := LoadProgram(root, patterns)
	if err != nil {
		return nil, err
	}
	return RunProgram(prog, checks), nil
}

// RunProgram applies checks to an already-loaded program.
func RunProgram(prog *Program, checks []Check) []Finding {
	var findings []Finding
	for _, c := range checks {
		name := c.Name()
		c.Run(prog, func(pos token.Pos, format string, args ...any) {
			p := prog.Fset.Position(pos)
			findings = append(findings, Finding{
				File:    p.Filename,
				Line:    p.Line,
				Col:     p.Column,
				Check:   name,
				Message: fmt.Sprintf(format, args...),
			})
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings
}
