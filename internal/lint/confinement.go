package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// ShardConfinement machine-checks the sharded gateway's strongest
// concurrency claim: some state needs no lock at all because exactly one
// goroutine context ever touches it (a shard's tick-only scratch, a
// connection handler's session table). The convention is a field
// comment naming the owning entry point:
//
//	arrived []bw.Bits // confined to shard.tick
//	owned   map[int]struct{} // confined to Gateway.handle
//
// The annotated field may then only be accessed
//
//   - inside the entry function itself or its spawn-free call closure
//     (functions reached from the entry without crossing a go statement
//     or a worker-pool submit — those start a new goroutine and leave
//     the confinement region),
//   - in a constructor of the owning struct (the value is not shared
//     yet), or
//   - with the owning struct's mutex exclusively held (Lock, not
//     RLock), the escape valve for setup/teardown paths.
//
// Two violations follow from the model: an access in a function outside
// the entry closure, and an access in a function that is *inside* the
// closure but also reachable from outside it — shared helpers silently
// bridge the confined state to foreign goroutines, which is exactly the
// data race the annotation exists to prevent. Accesses inside goroutine
// bodies spawned within the region are likewise outside it.
//
// Like guarded-by, the analysis is containment-based, intra-module, and
// stops at dynamic dispatch; it errs toward false negatives, never
// toward noise.
type ShardConfinement struct{}

// NewShardConfinement returns the check (annotation-driven).
func NewShardConfinement() *ShardConfinement { return &ShardConfinement{} }

// Name implements Check.
func (*ShardConfinement) Name() string { return "shard-confinement" }

// Doc implements Check.
func (*ShardConfinement) Doc() string {
	return `fields annotated "confined to <entry>" may only be touched in the entry's spawn-free call closure, constructors, or under the owner's mutex`
}

// confinedRe accepts "confined to tick" (a method of the owning struct)
// or "confined to Gateway.handle" (an entry on another type).
var confinedRe = regexp.MustCompile(`confined to ((?:[A-Za-z_]\w*\.)?[A-Za-z_]\w*)`)

// confInfo describes one confined field.
type confInfo struct {
	structName string
	fieldName  string
	entry      string // annotation text, possibly Type-qualified
	mutex      string // owning struct's mutex field, "" when none
}

// Run implements Check.
func (c *ShardConfinement) Run(prog *Program, report Reporter) {
	graph := prog.CallGraph()
	for _, pkg := range prog.Pkgs {
		c.runPackage(prog, graph, pkg, report)
	}
}

func (c *ShardConfinement) runPackage(prog *Program, graph *CallGraph, pkg *Package, report Reporter) {
	confined := map[types.Object]confInfo{}
	// entries maps annotation text to the resolved entry node, nil when
	// unresolved (already reported).
	entries := map[string]*FuncNode{}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var mutex string
			for _, fld := range st.Fields.List {
				if isMutexType(fld.Type) && len(fld.Names) > 0 {
					mutex = fld.Names[0].Name
				}
			}
			for _, fld := range st.Fields.List {
				entry := fieldConfAnnotation(fld)
				if entry == "" {
					continue
				}
				if _, seen := entries[entry]; !seen {
					node := resolveEntry(graph, pkg, ts.Name.Name, entry)
					entries[entry] = node
					if node == nil {
						report(fld.Pos(), "field %s.%s is confined to %q, but the package has no such function or method",
							ts.Name.Name, fieldNames(fld), entry)
					}
				}
				if entries[entry] == nil {
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						confined[obj] = confInfo{
							structName: ts.Name.Name,
							fieldName:  name.Name,
							entry:      entry,
							mutex:      mutex,
						}
					}
				}
			}
			return true
		})
	}
	if len(confined) == 0 {
		return
	}

	// The confinement region of each entry: its spawn-free call closure.
	regions := map[string]map[*FuncNode]bool{}
	for entry, node := range entries {
		if node != nil {
			regions[entry] = spawnFreeClosure(node)
		}
	}
	// Reverse call edges over the whole graph, for the shared-helper
	// rule (built once per package that has confined fields).
	callers := map[*FuncNode][]*FuncNode{}
	for _, n := range graph.Nodes() {
		for _, callee := range n.Callees {
			callers[callee] = append(callers[callee], n)
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := graph.Lookup(nodeKey(pkg.ImportPath, fd))
			c.checkBody(pkg, fd, node, confined, entries, regions, callers, report)
		}
	}
}

// checkBody reports confined-field accesses in one function that fall
// outside every legal context.
func (c *ShardConfinement) checkBody(pkg *Package, fd *ast.FuncDecl, node *FuncNode,
	confined map[types.Object]confInfo, entries map[string]*FuncNode,
	regions map[string]map[*FuncNode]bool, callers map[*FuncNode][]*FuncNode, report Reporter) {

	var walk func(n ast.Node, inSpawn bool)
	walk = func(n ast.Node, inSpawn bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
					for _, arg := range g.Call.Args {
						walk(arg, inSpawn)
					}
					return false
				}
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && spawnerNames[sel.Sel.Name] {
					for _, arg := range call.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							walk(lit.Body, true)
						} else {
							walk(arg, inSpawn)
						}
					}
					walk(call.Fun, inSpawn)
					return false
				}
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			info, ok := confined[selectedObject(pkg.Info, sel)]
			if !ok {
				return true
			}
			entry := entries[info.entry]
			region := regions[info.entry]
			if constructs(fd, info.structName) {
				return true
			}
			if inSpawn {
				report(sel.Pos(), "%s.%s is confined to %s, but this access runs on a goroutine spawned inside %s",
					info.structName, info.fieldName, info.entry, fd.Name.Name)
				return true
			}
			base := types.ExprString(sel.X)
			if node != nil && region[node] {
				if node != entry {
					if out := outsideCaller(node, region, callers); out != nil {
						report(sel.Pos(), "%s.%s is confined to %s, but %s is also called from %s, outside the confinement region",
							info.structName, info.fieldName, info.entry, fd.Name.Name, displayKey(out))
					}
				}
				return true
			}
			if info.mutex != "" && lockStrength(fd.Body, base, info.mutex) >= lockExclusive {
				return true
			}
			report(sel.Pos(), "%s.%s is confined to %s, but %s is outside its spawn-free call closure and does not hold %s.%s",
				info.structName, info.fieldName, info.entry, fd.Name.Name, base, muOrDefault(info.mutex))
			return true
		})
	}
	walk(fd.Body, false)
}

func muOrDefault(mu string) string {
	if mu == "" {
		return "mu"
	}
	return mu
}

// outsideCaller returns a direct caller of n that is not part of the
// region (nil when all callers are inside). The entry's own callers are
// exempt by construction — the check never asks about the entry.
func outsideCaller(n *FuncNode, region map[*FuncNode]bool, callers map[*FuncNode][]*FuncNode) *FuncNode {
	for _, caller := range callers[n] {
		if !region[caller] {
			return caller
		}
	}
	return nil
}

// spawnFreeClosure returns the set of functions reachable from entry
// without crossing a goroutine spawn.
func spawnFreeClosure(entry *FuncNode) map[*FuncNode]bool {
	region := map[*FuncNode]bool{entry: true}
	queue := []*FuncNode{entry}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range cur.Callees {
			if !region[callee] {
				region[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return region
}

// resolveEntry finds the entry node named by an annotation: "tick" means
// a method of the owning struct (falling back to a package function),
// "Gateway.handle" names the receiver type explicitly.
func resolveEntry(graph *CallGraph, pkg *Package, ownerStruct, entry string) *FuncNode {
	recv, name := ownerStruct, entry
	if dot := strings.IndexByte(entry, '.'); dot >= 0 {
		recv, name = entry[:dot], entry[dot+1:]
	}
	if n := graph.Lookup(pkg.ImportPath + "." + recv + "." + name); n != nil {
		return n
	}
	if !strings.Contains(entry, ".") {
		return graph.Lookup(pkg.ImportPath + "." + name)
	}
	return nil
}

// fieldConfAnnotation extracts the entry name from a field's doc or line
// comment.
func fieldConfAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := confinedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
