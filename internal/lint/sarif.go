package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the minimal subset code-scanning UIs consume: one
// run, one tool driver carrying a rule per check, one result per
// finding with a physical location. Everything is plain structs so the
// driver stays stdlib-only.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RelPath renders a finding's file path relative to the module root,
// slash-separated, for output formats consumed outside this machine
// (SARIF artifact URIs, CI annotations). Paths that do not sit under
// root are returned unchanged.
func RelPath(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteSARIF encodes findings as a SARIF 2.1.0 log on w. Each check
// becomes a rule (even when it produced no results, so the rule set
// documents what ran); file paths are made root-relative.
func WriteSARIF(w io.Writer, root string, checks []Check, findings []Finding) error {
	rules := make([]sarifRule, len(checks))
	for i, c := range checks {
		rules[i] = sarifRule{
			ID:               c.Name(),
			ShortDescription: sarifMessage{Text: c.Doc()},
		}
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: RelPath(root, f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bwlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
