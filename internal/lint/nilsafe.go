package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// NilSafe enforces the obs instrument contract: the metrics registry is
// optional everywhere, so instrument types document "The nil *T is a
// valid no-op" and every call site skips the registry guard. That only
// works if every exported pointer-receiver method really does begin
// with a nil-receiver guard — a single method relying on a colleague's
// guard (or on luck) turns a disabled registry into a panic on a hot
// path.
//
// For every struct whose doc comment claims nil safety (the "nil *T is
// a valid no-op" sentence, "nil-receiver-safe", or a bwlint:nilsafe
// directive), each exported method must
//
//   - use a pointer receiver (a value receiver dereferences before the
//     body can guard), and
//   - have `if recv == nil { return ... }` as its first statement
//     (possibly || further conditions).
type NilSafe struct {
	// Match selects the packages the contract applies to.
	Match func(importPath string) bool
}

// NewNilSafe returns the check with its default scope.
func NewNilSafe() *NilSafe {
	return &NilSafe{Match: func(path string) bool {
		return strings.Contains(path, "internal/obs") || strings.Contains(path, "testdata")
	}}
}

// Name implements Check.
func (*NilSafe) Name() string { return "nil-safe" }

// Doc implements Check.
func (*NilSafe) Doc() string {
	return "exported methods of nil-safe instrument types must begin with a nil-receiver guard"
}

var nilSafeDocRe = regexp.MustCompile(`(?i)nil \*?[A-Za-z_]\w* is a valid no-op|nil-receiver-safe|bwlint:nilsafe`)

// Run implements Check.
func (c *NilSafe) Run(prog *Program, report Reporter) {
	for _, pkg := range prog.Pkgs {
		if !c.Match(pkg.ImportPath) {
			continue
		}
		c.runPackage(pkg, report)
	}
}

func (c *NilSafe) runPackage(pkg *Package, report Reporter) {
	nilSafe := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && nilSafeDocRe.MatchString(doc.Text()) {
					nilSafe[ts.Name.Name] = true
				}
			}
		}
	}
	if len(nilSafe) == 0 {
		return
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if !ast.IsExported(fd.Name.Name) {
				continue
			}
			recvType := fd.Recv.List[0].Type
			typeName := receiverTypeName(recvType)
			if !nilSafe[typeName] {
				continue
			}
			if _, ptr := recvType.(*ast.StarExpr); !ptr {
				report(fd.Pos(), "%s.%s has a value receiver; nil-safe types need pointer receivers so the nil guard can run",
					typeName, fd.Name.Name)
				continue
			}
			var recvName string
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				report(fd.Pos(), "%s.%s discards its receiver and cannot guard against a nil %s",
					typeName, fd.Name.Name, typeName)
				continue
			}
			if !startsWithNilGuard(fd.Body, recvName) {
				report(fd.Pos(), "%s is documented nil-receiver-safe, but %s does not begin with an `if %s == nil` guard",
					typeName, fd.Name.Name, recvName)
			}
		}
	}
}

// startsWithNilGuard reports whether the first statement is
// `if recv == nil [|| ...] { ... return ... }`.
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condChecksNil(ifStmt.Cond, recvName) {
		return false
	}
	// The guard must leave the method: its body ends in a return.
	if n := len(ifStmt.Body.List); n > 0 {
		_, ok := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
		return ok
	}
	return false
}

// condChecksNil reports whether cond is recv == nil, possibly as an
// operand of a top-level || chain.
func condChecksNil(cond ast.Expr, recvName string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op.String() {
	case "==":
		return isIdent(be.X, recvName) && isIdent(be.Y, "nil") ||
			isIdent(be.X, "nil") && isIdent(be.Y, recvName)
	case "||":
		return condChecksNil(be.X, recvName) || condChecksNil(be.Y, recvName)
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
