package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// callgraph.go is the layer-2 analysis engine: one pass over the loaded
// program produces a FuncNode summary per function declaration — its
// static intra-module callees, receiver, mutex operations,
// allocation-inducing constructs, goroutine-spawn boundaries, and the
// bwlint annotations on its doc comment — and the whole-program checks
// (hotpath, shard-confinement) walk the resulting graph instead of
// re-deriving these facts per check. The graph is built lazily, exactly
// once per Program, and shared by every check in the run.

// Annotation grammar understood by the engine:
//
//	// bwlint:hotpath
//	    on a function doc: the function and everything it (transitively,
//	    statically) calls must be free of heap-allocating constructs.
//	// bwlint:allocok <reason>
//	    on or directly above an allocating line inside a hot path: the
//	    allocation is acknowledged (amortized growth, cold error branch).
//	    The reason is mandatory; escapes in effect are counted and
//	    reported by bwlint -v.
//	// confined to <Type>.<method>   (struct field comment)
//	    the field may only be touched inside the named method's
//	    spawn-free call closure, in constructors, or with the owning
//	    struct's mutex held. See ShardConfinement.
//	// bwlint:deterministic          (package comment)
//	    the package produces committed goldens; time.Now, the global
//	    math/rand source, and unordered map iteration are forbidden.
//	    See Determinism.
//	// bwlint:detok <reason>
//	    on or directly above a line in a deterministic package: the
//	    nondeterminism source is acknowledged (not on an output path).

// AllocKind classifies one allocation-inducing construct.
type AllocKind string

const (
	AllocClosure   AllocKind = "function literal (closure)"
	AllocMake      AllocKind = "make"
	AllocNew       AllocKind = "new"
	AllocAppend    AllocKind = "append may grow its backing array"
	AllocCompLit   AllocKind = "composite literal allocates"
	AllocConcat    AllocKind = "string concatenation"
	AllocConvert   AllocKind = "string/byte-slice conversion"
	AllocBox       AllocKind = "interface boxing"
	AllocFmt       AllocKind = "allocating stdlib call"
	AllocGo        AllocKind = "go statement (goroutine + closure)"
	AllocMapAssign AllocKind = "map assignment may grow the table"
)

// AllocSite is one allocation-inducing construct inside a function body.
type AllocSite struct {
	Pos  token.Pos
	Kind AllocKind
	// Detail names the construct (the callee for stdlib calls, the type
	// for conversions) for the finding message.
	Detail string
}

// LockOp is one mutex acquisition found in a function body: base.mu.Lock()
// renders as {Base: "base", Mutex: "mu", Read: false}.
type LockOp struct {
	Pos   token.Pos
	Base  string // rendered receiver expression of the mutex field
	Mutex string // mutex field name
	Read  bool   // RLock rather than Lock
}

// FuncNode is the summary of one function or method declaration.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Key is the node's stable identity: "pkgpath.Name" for functions,
	// "pkgpath.Recv.Name" for methods (pointer-ness of the receiver is
	// ignored). It survives packages with type errors, where Obj may be
	// nil.
	Key string
	// RecvType is the bare receiver type name, "" for plain functions.
	RecvType string
	// Obj is the go/types object when type checking succeeded.
	Obj *types.Func

	// Hotpath reports a bwlint:hotpath doc annotation.
	Hotpath bool

	// Callees are the statically resolved intra-module calls made on the
	// normal (same-goroutine) path, deduplicated, in source order.
	// Dynamic dispatch through interfaces and calls outside the module
	// are not represented; checks that walk the graph treat those as
	// analysis boundaries.
	Callees []*FuncNode

	// SpawnedCallees are intra-module functions invoked via a go
	// statement (directly or as the body of a spawned function literal).
	// They run on a different goroutine and are therefore outside every
	// confinement region that contains the spawn.
	SpawnedCallees []*FuncNode

	// Spawns are the positions of go statements (and function literals
	// handed to known worker-pool submit methods) in the body.
	Spawns []token.Pos

	// Allocs are the allocation-inducing constructs in the body,
	// including bodies of non-spawned function literals (those run, at
	// the latest, when the enclosing function returns via defer).
	Allocs []AllocSite

	// Locks are the mutex acquisitions in the body.
	Locks []LockOp
}

// CallGraph indexes the function summaries of a loaded program.
type CallGraph struct {
	// Funcs maps node keys ("pkgpath.Recv.Name") to summaries.
	Funcs map[string]*FuncNode
	// byObj resolves type-checked callees.
	byObj map[*types.Func]*FuncNode
	// nodes in deterministic order, for ordered iteration.
	nodes []*FuncNode
}

// Nodes returns every summary in deterministic (key) order.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// Lookup returns the summary for a key, or nil.
func (g *CallGraph) Lookup(key string) *FuncNode { return g.Funcs[key] }

// CallGraph returns the program's function-summary graph, building it on
// first use and sharing the result across all checks of the run.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() {
		p.cgBuilds++
		p.cg = buildCallGraph(p)
	})
	return p.cg
}

// CallGraphBuilds reports how many times the summary graph was actually
// constructed for this program — the single-load regression test asserts
// it stays at 1 however many checks run.
func (p *Program) CallGraphBuilds() int { return p.cgBuilds }

var hotpathRe = regexp.MustCompile(`bwlint:hotpath\b`)

// buildCallGraph summarizes every function declaration of every loaded
// package (listed and dependency alike, so reachability crosses package
// boundaries even when only one directory is linted).
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		Funcs: make(map[string]*FuncNode),
		byObj: make(map[*types.Func]*FuncNode),
	}
	type pendingCalls struct {
		node    *FuncNode
		calls   []*ast.CallExpr // same-goroutine calls
		spawned []*ast.CallExpr // calls behind a go statement
	}
	var pending []pendingCalls

	for _, pkg := range prog.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := &FuncNode{
					Pkg:      pkg,
					Decl:     fd,
					RecvType: declRecvType(fd),
					Key:      nodeKey(pkg.ImportPath, fd),
					Hotpath:  fd.Doc != nil && hotpathRe.MatchString(fd.Doc.Text()),
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					node.Obj = obj
					g.byObj[obj] = node
				}
				p := pendingCalls{node: node}
				summarizeBody(pkg, fd.Body, node, &p.calls, &p.spawned)
				pending = append(pending, p)
				g.Funcs[node.Key] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].Key < g.nodes[j].Key })

	// Resolve call edges now that every node exists.
	for _, p := range pending {
		seen := map[*FuncNode]bool{}
		for _, call := range p.calls {
			if callee := g.resolveCallee(p.node.Pkg, call); callee != nil && !seen[callee] {
				seen[callee] = true
				p.node.Callees = append(p.node.Callees, callee)
			}
		}
		seenSpawn := map[*FuncNode]bool{}
		for _, call := range p.spawned {
			if callee := g.resolveCallee(p.node.Pkg, call); callee != nil && !seenSpawn[callee] {
				seenSpawn[callee] = true
				p.node.SpawnedCallees = append(p.node.SpawnedCallees, callee)
			}
		}
	}
	return g
}

// nodeKey builds the stable identity for a declaration.
func nodeKey(importPath string, fd *ast.FuncDecl) string {
	if recv := declRecvType(fd); recv != "" {
		return importPath + "." + recv + "." + fd.Name.Name
	}
	return importPath + "." + fd.Name.Name
}

// declRecvType returns the bare receiver type name of a method decl.
func declRecvType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	return receiverTypeName(fd.Recv.List[0].Type)
}

// resolveCallee maps a call expression to the module function it
// statically invokes, or nil (dynamic dispatch, stdlib, builtins).
func (g *CallGraph) resolveCallee(pkg *Package, call *ast.CallExpr) *FuncNode {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Method call: resolve only concrete (non-interface) methods —
			// an interface call site is a dynamic-dispatch boundary.
			if sel.Kind() == types.MethodVal {
				obj = sel.Obj()
				if recvIsInterface(sel.Recv()) {
					return nil
				}
			}
		} else {
			obj = pkg.Info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[fn]
}

func recvIsInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// spawnerNames are method names whose function-literal arguments run on
// another goroutine by convention (worker pools, serve loops); literals
// handed to them are treated like go statements.
var spawnerNames = map[string]bool{"Go": true, "Submit": true, "Serve": true, "Spawn": true}

// summarizeBody walks one function body collecting allocation sites,
// lock operations, spawn points and call expressions. Function literals
// are folded into the enclosing function (they run on the same
// goroutine) unless they are the operand of a go statement or an
// argument to a known spawner — then their body's calls are recorded as
// spawned and their accesses belong to a different confinement region.
func summarizeBody(pkg *Package, body *ast.BlockStmt, node *FuncNode, calls, spawned *[]*ast.CallExpr) {
	var walk func(n ast.Node, inSpawn bool)
	walk = func(n ast.Node, inSpawn bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				node.Spawns = append(node.Spawns, st.Pos())
				if !inSpawn {
					node.Allocs = append(node.Allocs, AllocSite{Pos: st.Pos(), Kind: AllocGo})
				}
				// The spawned call itself, and everything inside a spawned
				// literal, runs on the new goroutine.
				*spawned = append(*spawned, st.Call)
				if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					for _, arg := range st.Call.Args {
						walk(arg, inSpawn)
					}
				}
				return false
			case *ast.CallExpr:
				summarizeCall(pkg, st, node, inSpawn)
				if isPanicCall(st) {
					// Panic arguments are cold by definition; do not charge
					// their allocations (fmt.Sprintf in a panic message) to
					// the hot path. The panic still ends the path.
					return false
				}
				if inSpawn {
					*spawned = append(*spawned, st)
				} else {
					*calls = append(*calls, st)
				}
				// Function literals passed to known spawners run elsewhere.
				if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok && spawnerNames[sel.Sel.Name] {
					for _, arg := range st.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							node.Spawns = append(node.Spawns, lit.Pos())
							walk(lit.Body, true)
						} else {
							walk(arg, inSpawn)
						}
					}
					walk(st.Fun, inSpawn)
					return false
				}
				return true
			case *ast.FuncLit:
				if !inSpawn {
					node.Allocs = append(node.Allocs, AllocSite{Pos: st.Pos(), Kind: AllocClosure})
				}
				// Fall through: the literal's body is summarized into the
				// enclosing node (same goroutine unless spawned above).
				return true
			case *ast.UnaryExpr:
				if st.Op == token.AND && !inSpawn {
					if lit, ok := ast.Unparen(st.X).(*ast.CompositeLit); ok {
						node.Allocs = append(node.Allocs, AllocSite{
							Pos: st.Pos(), Kind: AllocCompLit,
							Detail: "&" + types.ExprString(lit.Type),
						})
						// The literal below would be skipped as a plain
						// struct literal; slice/map literals inside still
						// get their own sites via the recursion.
					}
				}
				return true
			case *ast.CompositeLit:
				if site, ok := compositeAlloc(pkg, st); ok && !inSpawn {
					node.Allocs = append(node.Allocs, site)
				}
				return true
			case *ast.BinaryExpr:
				if st.Op == token.ADD && !inSpawn && isStringExpr(pkg, st.X) {
					node.Allocs = append(node.Allocs, AllocSite{Pos: st.Pos(), Kind: AllocConcat})
				}
				return true
			case *ast.AssignStmt:
				if !inSpawn {
					for _, lhs := range st.Lhs {
						if ix, ok := lhs.(*ast.IndexExpr); ok && isMapExpr(pkg, ix.X) {
							node.Allocs = append(node.Allocs, AllocSite{Pos: lhs.Pos(), Kind: AllocMapAssign})
						}
					}
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
}

// summarizeCall records the allocation and lock facts of one call.
func summarizeCall(pkg *Package, call *ast.CallExpr, node *FuncNode, inSpawn bool) {
	if isPanicCall(call) {
		// go/types records a call-site signature for builtins, so the
		// boxing detector below would otherwise charge panic's any
		// argument to the hot path; panics are cold by definition.
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if !inSpawn {
				node.Allocs = append(node.Allocs, AllocSite{Pos: call.Pos(), Kind: AllocMake, Detail: callArgType(call)})
			}
		case "new":
			if !inSpawn {
				node.Allocs = append(node.Allocs, AllocSite{Pos: call.Pos(), Kind: AllocNew, Detail: callArgType(call)})
			}
		case "append":
			if !inSpawn {
				node.Allocs = append(node.Allocs, AllocSite{Pos: call.Pos(), Kind: AllocAppend})
			}
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[base].(*types.PkgName); ok {
				if detail, bad := allocatingStdlibCall(obj.Imported().Path(), fun.Sel.Name); bad && !inSpawn {
					node.Allocs = append(node.Allocs, AllocSite{Pos: call.Pos(), Kind: AllocFmt, Detail: detail})
				}
			}
		}
		if fun.Sel.Name == "Lock" || fun.Sel.Name == "RLock" {
			if muSel, ok := fun.X.(*ast.SelectorExpr); ok {
				node.Locks = append(node.Locks, LockOp{
					Pos:   call.Pos(),
					Base:  types.ExprString(muSel.X),
					Mutex: muSel.Sel.Name,
					Read:  fun.Sel.Name == "RLock",
				})
			}
		}
	}
	// Conversions that copy: string(bytes), []byte(s), []rune(s).
	if !inSpawn {
		if site, ok := conversionAlloc(pkg, call); ok {
			node.Allocs = append(node.Allocs, site)
		}
	}
	// Interface boxing: a concrete non-pointer argument passed to an
	// interface parameter is wrapped in a heap-allocated box.
	if !inSpawn {
		for _, arg := range call.Args {
			if pos, detail, boxed := boxesArg(pkg, call, arg); boxed {
				node.Allocs = append(node.Allocs, AllocSite{Pos: pos, Kind: AllocBox, Detail: detail})
			}
		}
	}
}

// allocatingStdlibCall reports stdlib functions known to allocate on
// every call. The list is deliberately small and certain: fmt and errors
// always build new values; the named strings/strconv helpers return
// fresh strings. Unknown stdlib calls are not flagged (documented
// unsoundness — the check errs toward silence outside the module).
func allocatingStdlibCall(pkgPath, name string) (string, bool) {
	switch pkgPath {
	case "fmt":
		return "fmt." + name, true
	case "errors":
		if name == "New" {
			return "errors.New", true
		}
	case "strings":
		switch name {
		case "Join", "Split", "Repeat", "Replace", "ReplaceAll", "Map",
			"ToUpper", "ToLower", "Fields", "Title", "TrimFunc":
			return "strings." + name, true
		}
	case "strconv":
		if !strings.HasPrefix(name, "Append") && (strings.HasPrefix(name, "Format") || name == "Itoa" || name == "Quote") {
			return "strconv." + name, true
		}
	}
	return "", false
}

// compositeAlloc classifies a composite literal: slice and map literals
// always allocate backing storage; struct literals by value do not
// (address-taken struct literals are reported by the &-operand walk in
// the parent UnaryExpr, folded in here via the types view).
func compositeAlloc(pkg *Package, lit *ast.CompositeLit) (AllocSite, bool) {
	if tv, ok := pkg.Info.Types[lit]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			return AllocSite{Pos: lit.Pos(), Kind: AllocCompLit, Detail: tv.Type.String()}, true
		}
		return AllocSite{}, false
	}
	// No type info (broken package): fall back to the syntax.
	switch lit.Type.(type) {
	case *ast.ArrayType:
		if at := lit.Type.(*ast.ArrayType); at.Len == nil {
			return AllocSite{Pos: lit.Pos(), Kind: AllocCompLit, Detail: types.ExprString(lit.Type)}, true
		}
	case *ast.MapType:
		return AllocSite{Pos: lit.Pos(), Kind: AllocCompLit, Detail: types.ExprString(lit.Type)}, true
	}
	return AllocSite{}, false
}

// conversionAlloc reports string([]byte), []byte(string), []rune(string)
// conversions, which copy their operand.
func conversionAlloc(pkg *Package, call *ast.CallExpr) (AllocSite, bool) {
	if len(call.Args) != 1 {
		return AllocSite{}, false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return AllocSite{}, false
	}
	to, from := tv.Type, pkg.Info.Types[call.Args[0]].Type
	if to == nil || from == nil {
		return AllocSite{}, false
	}
	if isStringType(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringType(from) {
		return AllocSite{Pos: call.Pos(), Kind: AllocConvert, Detail: from.String() + " to " + to.String()}, true
	}
	return AllocSite{}, false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// boxesArg reports whether passing arg in call wraps a concrete
// non-pointer value in an interface (the classic hidden allocation).
// Nil literals and values that are already interfaces or pointers do
// not allocate.
func boxesArg(pkg *Package, call *ast.CallExpr, arg ast.Expr) (token.Pos, string, bool) {
	sig := callSignature(pkg, call)
	if sig == nil {
		return token.NoPos, "", false
	}
	idx := -1
	for i, a := range call.Args {
		if a == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return token.NoPos, "", false
	}
	var paramT types.Type
	n := sig.Params().Len()
	switch {
	case sig.Variadic() && idx >= n-1:
		if call.Ellipsis.IsValid() {
			return token.NoPos, "", false // forwarding a slice, no per-arg boxing
		}
		paramT = sig.Params().At(n - 1).Type().(*types.Slice).Elem()
	case idx < n:
		paramT = sig.Params().At(idx).Type()
	default:
		return token.NoPos, "", false
	}
	if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
		return token.NoPos, "", false
	}
	argTV, ok := pkg.Info.Types[arg]
	if !ok || argTV.Type == nil || argTV.IsNil() {
		return token.NoPos, "", false
	}
	switch argTV.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return token.NoPos, "", false // pointer-shaped: boxed without copying
	}
	return arg.Pos(), argTV.Type.String(), true
}

// callSignature resolves the signature of a call's callee, nil for
// builtins, conversions, and untyped packages.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// callArgType renders the type argument of a make/new call for finding
// details ("make([]bw.Bits)").
func callArgType(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	return types.ExprString(call.Args[0])
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isMapExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// lineDirectives collects per-line "bwlint:<name> <reason>" escapes from
// every comment in a file: a directive applies to its own line and the
// line directly below it (so it can ride an end-of-line comment or sit
// above the construct).
func lineDirectives(fset *token.FileSet, f *ast.File, directive string) map[int]string {
	re := regexp.MustCompile(regexp.QuoteMeta(directive) + `\s+(\S.*)`)
	out := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := re.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			reason := strings.TrimSpace(m[1])
			out[line] = reason
			out[line+1] = reason
		}
	}
	return out
}
