package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dynbw/internal/lint"
)

const fixtureImport = "dynbw/internal/lint/testdata/src"

func loadFixture(t *testing.T, dirs ...string) *lint.Program {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = filepath.Join("internal", "lint", "testdata", "src", d)
	}
	prog, err := lint.LoadProgram(root, patterns)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	return prog
}

// TestHotpathRequiredRoots pins the acceptance gate: a required root
// that lost its bwlint:hotpath annotation, or no longer exists, is
// itself a finding.
func TestHotpathRequiredRoots(t *testing.T) {
	check := &lint.Hotpath{Required: []string{
		fixtureImport + "/hotpath.buf.step", // annotated: no finding
		fixtureImport + "/hotpath.cold",     // exists, annotation missing
		fixtureImport + "/hotpath.vanished", // does not exist
	}}
	prog := loadFixture(t, "hotpath")
	findings := lint.RunProgram(prog, []lint.Check{check})

	var missing, gone int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "missing its // bwlint:hotpath annotation"):
			missing++
			if !strings.Contains(f.Message, "cold") {
				t.Errorf("missing-annotation finding names the wrong function: %s", f)
			}
		case strings.Contains(f.Message, "no longer exists"):
			gone++
			if !strings.Contains(f.Message, "vanished") {
				t.Errorf("missing-function finding names the wrong function: %s", f)
			}
		}
		if strings.Contains(f.Message, "step is a required") {
			t.Errorf("annotated root reported as unannotated: %s", f)
		}
	}
	if missing != 1 || gone != 1 {
		t.Errorf("required-root findings: missing=%d gone=%d, want 1 and 1", missing, gone)
	}
}

// TestProgramSharedAcrossChecks is the single-load regression test: one
// Program serves every check, each package is parsed exactly once, and
// the call graph is built exactly once no matter how many checks
// consume it.
func TestProgramSharedAcrossChecks(t *testing.T) {
	prog := loadFixture(t, "hotpath", "confined", "determ")
	if prog.Loads != len(prog.All) {
		t.Errorf("Loads = %d, want one parse per package (%d)", prog.Loads, len(prog.All))
	}
	lint.RunProgram(prog, lint.Checks())
	if got := prog.CallGraphBuilds(); got != 1 {
		t.Errorf("call graph built %d times across the run, want exactly 1", got)
	}
}

// TestLoaderTypeErrorPackage: a package that fails type checking is
// still loaded (errors recorded) and syntactic/partially-typed checks
// still produce findings.
func TestLoaderTypeErrorPackage(t *testing.T) {
	prog := loadFixture(t, "broken")
	if len(prog.Pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Pkgs))
	}
	if len(prog.Pkgs[0].TypeErrors) == 0 {
		t.Fatal("fixture type error was not recorded")
	}
	findings := lint.RunProgram(prog, []lint.Check{lint.NewDeterminism()})
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Errorf("determinism did not run over the type-error package; findings: %v", findings)
	}
}

// TestLoaderSkipsTestOnlyPackages: recursive patterns skip directories
// with only _test.go files, and naming one directly is an error.
func TestLoaderSkipsTestOnlyPackages(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.LoadProgram(root, []string{filepath.Join("internal", "lint", "testdata", "src") + "/..."})
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	for _, pkg := range prog.Pkgs {
		if strings.HasSuffix(pkg.ImportPath, "/testonly") {
			t.Errorf("test-only package was listed: %s", pkg.ImportPath)
		}
	}
	var sawHotpath bool
	for _, pkg := range prog.Pkgs {
		if strings.HasSuffix(pkg.ImportPath, "/hotpath") {
			sawHotpath = true
		}
	}
	if !sawHotpath {
		t.Error("recursive fixture load missed the hotpath package")
	}
	if _, err := lint.LoadProgram(root, []string{filepath.Join("internal", "lint", "testdata", "src", "testonly")}); err == nil {
		t.Error("directly naming a test-only package did not error")
	}
}

// TestSelectUnknownListsAvailable: the error for an unknown check name
// enumerates what is available.
func TestSelectUnknownListsAvailable(t *testing.T) {
	_, err := lint.Select(lint.Checks(), "no-such-check")
	if err == nil {
		t.Fatal("Select accepted an unknown check name")
	}
	for _, name := range []string{"hotpath", "shard-confinement", "determinism", "guarded-by"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Select error %q does not list available check %s", err, name)
		}
	}
}

// TestCheckStats: the escape-counting checks summarize their last run.
func TestCheckStats(t *testing.T) {
	hp := lint.NewHotpath()
	hp.Required = nil
	prog := loadFixture(t, "hotpath")
	lint.RunProgram(prog, []lint.Check{hp})
	if s := hp.Stats(); !strings.Contains(s, "1 bwlint:allocok") {
		t.Errorf("hotpath Stats = %q, want 1 escape in effect", s)
	}

	det := lint.NewDeterminism()
	det.Required = nil
	prog = loadFixture(t, "determ")
	lint.RunProgram(prog, []lint.Check{det})
	if s := det.Stats(); !strings.Contains(s, "1 bwlint:detok") {
		t.Errorf("determinism Stats = %q, want 1 escape in effect", s)
	}
}
