package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EmitOnChange enforces the paper's accounting invariant on the core
// policies: the objective function is the number of allocation changes
// (Theorems 6, 14, 17), and PR 3 made those changes observable through
// obs.Observer events — so a policy method that writes an allocation
// field (declared bw.Rate or []bw.Rate on a struct with a Rate/Rates
// method) without emitting an event silently corrupts the live cost
// measure. The routing tier (internal/route) counts reroutes the same
// way, so its Policy type — bw.Rate load bookkeeping behind a Place
// method — is held to the same rule.
//
// The rule, per allocator type:
//
//   - an exported method that writes an allocation field must itself
//     contain an emission (a call to an Observer's Event method or to
//     an emit* helper);
//   - an unexported writer may instead rely on its callers: every
//     *method* of the same type that calls it must emit. Functions that
//     are not methods (constructors) are exempt — initial allocation is
//     not a change.
//
// The check is syntactic, so it keeps working on packages with type
// errors, and it is scoped to the policy packages (internal/core and
// internal/route) plus lint testdata.
type EmitOnChange struct {
	// Match selects the packages the invariant applies to.
	Match func(importPath string) bool
}

// NewEmitOnChange returns the check with its default scope.
func NewEmitOnChange() *EmitOnChange {
	return &EmitOnChange{Match: func(path string) bool {
		return strings.Contains(path, "internal/core") ||
			strings.Contains(path, "internal/route") ||
			strings.Contains(path, "testdata")
	}}
}

// Name implements Check.
func (*EmitOnChange) Name() string { return "emit-on-change" }

// Doc implements Check.
func (*EmitOnChange) Doc() string {
	return "allocation-field writes in core policies must emit an observer event (the paper's cost measure)"
}

// methodFacts is what the check records about one method.
type methodFacts struct {
	decl *ast.FuncDecl
	// writes holds the position of the first allocation-field write per
	// written field name.
	writes map[string]token.Pos
	// emits reports whether the body contains an Event/emit* call.
	emits bool
	// calls lists same-type methods invoked through the receiver.
	calls []string
}

// Run implements Check.
func (c *EmitOnChange) Run(prog *Program, report Reporter) {
	for _, pkg := range prog.Pkgs {
		if !c.Match(pkg.ImportPath) {
			continue
		}
		c.runPackage(pkg, report)
	}
}

func (c *EmitOnChange) runPackage(pkg *Package, report Reporter) {
	allocFields := map[string]map[string]bool{} // struct name -> alloc field set
	hasAllocMethod := map[string]bool{}         // struct name -> has Rate/Rates method
	methods := map[string]map[string]*methodFacts{}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := map[string]bool{}
			for _, fld := range st.Fields.List {
				if !isAllocFieldType(fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					fields[name.Name] = true
				}
			}
			if len(fields) > 0 {
				allocFields[ts.Name.Name] = fields
			}
			return true
		})
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvType := receiverTypeName(fd.Recv.List[0].Type)
			if recvType == "" {
				continue
			}
			// Rate/Rates mark the core allocators; Place marks the routing
			// tier's load-reserving policies.
			if name := fd.Name.Name; name == "Rate" || name == "Rates" || name == "Place" {
				hasAllocMethod[recvType] = true
			}
			var recvName string
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			facts := &methodFacts{decl: fd, writes: map[string]token.Pos{}}
			collectFacts(fd.Body, recvName, allocFields[recvType], facts)
			if methods[recvType] == nil {
				methods[recvType] = map[string]*methodFacts{}
			}
			methods[recvType][fd.Name.Name] = facts
		}
	}

	for typeName, byName := range methods {
		if !hasAllocMethod[typeName] || len(allocFields[typeName]) == 0 {
			continue
		}
		// Invert the receiver call graph once per type (each caller
		// listed once, however many call sites it has).
		callers := map[string][]string{}
		for caller, facts := range byName {
			seen := map[string]bool{}
			for _, callee := range facts.calls {
				if _, ok := byName[callee]; ok && !seen[callee] {
					seen[callee] = true
					callers[callee] = append(callers[callee], caller)
				}
			}
		}
		for name, facts := range byName {
			if len(facts.writes) == 0 || facts.emits {
				continue
			}
			field, pos := firstWrite(facts.writes)
			if ast.IsExported(name) {
				report(pos, "exported method %s.%s writes allocation field %q without emitting an observer event",
					typeName, name, field)
				continue
			}
			for _, caller := range callers[name] {
				if !byName[caller].emits {
					report(pos, "method %s.%s writes allocation field %q without emitting an observer event, and its caller %s does not emit either",
						typeName, name, field, caller)
				}
			}
		}
	}
}

// isAllocFieldType reports whether a struct field's declared type spells
// an allocation: bw.Rate or []bw.Rate.
func isAllocFieldType(e ast.Expr) bool {
	switch t := types.ExprString(e); t {
	case "bw.Rate", "[]bw.Rate":
		return true
	}
	return false
}

// receiverTypeName extracts T from receiver types T, *T and generic
// instantiations.
func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// collectFacts walks a method body recording allocation-field writes,
// emissions, and receiver method calls.
func collectFacts(body *ast.BlockStmt, recvName string, fields map[string]bool, facts *methodFacts) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if f, pos, ok := allocWrite(lhs, recvName, fields); ok {
					if _, seen := facts.writes[f]; !seen {
						facts.writes[f] = pos
					}
				}
			}
		case *ast.IncDecStmt:
			if f, pos, ok := allocWrite(st.X, recvName, fields); ok {
				if _, seen := facts.writes[f]; !seen {
					facts.writes[f] = pos
				}
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name == "Event" || strings.HasPrefix(name, "emit") {
				facts.emits = true
			}
			if base, ok := sel.X.(*ast.Ident); ok && base.Name == recvName {
				facts.calls = append(facts.calls, name)
			}
		}
		return true
	})
}

// allocWrite reports whether lhs writes recv.<field> (possibly through
// an index), returning the field name and position.
func allocWrite(lhs ast.Expr, recvName string, fields map[string]bool) (string, token.Pos, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			base, ok := e.X.(*ast.Ident)
			if !ok || base.Name != recvName || !fields[e.Sel.Name] {
				return "", token.NoPos, false
			}
			return e.Sel.Name, e.Pos(), true
		default:
			return "", token.NoPos, false
		}
	}
}

// firstWrite returns the lexically first recorded write.
func firstWrite(writes map[string]token.Pos) (string, token.Pos) {
	var field string
	pos := token.Pos(0)
	for f, p := range writes {
		if pos == 0 || p < pos {
			field, pos = f, p
		}
	}
	return field, pos
}
