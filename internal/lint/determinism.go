package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// Determinism protects the byte-identical-goldens contract: every
// committed experiment table is regenerated in CI and compared
// byte-for-byte (and harness.ParRows is tested to produce identical
// output at any -j), so a golden producer that consults the wall clock,
// the global math/rand source, or Go's randomized map iteration order
// silently breaks every downstream comparison. Packages that produce
// committed goldens declare it in their package comment:
//
//	// bwlint:deterministic
//
// and the check then forbids, in every non-test file of the package:
//
//   - time.Now / time.Since — wall-clock values must come in through a
//     caller-supplied clock;
//   - package-level math/rand functions (Intn, Float64, Perm, Shuffle,
//     ...), which draw from the shared global source; seeded generators
//     via rand.New(rand.NewSource(seed)) are the sanctioned route;
//   - ranging over a map, unless the loop only collects keys for
//     sorting (`for k := range m { keys = append(keys, k) }`).
//
// A genuinely harmless site (output-independent timing, diagnostics) is
// acknowledged in place with
//
//	// bwlint:detok <reason>
//
// which the check counts and bwlint -v reports. The golden-producing
// packages themselves cannot opt out silently: Required lists the
// import paths that must carry the package marker, so removing the
// comment is itself a finding.
type Determinism struct {
	// Required lists import paths that must carry the
	// bwlint:deterministic package marker when linted.
	Required []string

	detoks int
}

// NewDeterminism returns the check with the repo's golden producers
// required: the experiment harness, the simulator core, and the
// experiment CLIs.
func NewDeterminism() *Determinism {
	return &Determinism{Required: []string{
		"dynbw/internal/harness",
		"dynbw/internal/sim",
		"dynbw/cmd/bwmulti",
		"dynbw/cmd/bwsim",
	}}
}

// Name implements Check.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Check.
func (*Determinism) Doc() string {
	return "golden-producing packages must not use time.Now, the global math/rand source, or unordered map iteration"
}

// Stats implements Stater.
func (c *Determinism) Stats() string {
	return fmt.Sprintf("%d bwlint:detok escape(s) in effect", c.detoks)
}

// deterministicRe matches the marker only when it stands alone on its
// comment line (directive style), so prose that merely mentions it —
// this file's own doc comments, say — does not mark a package.
var deterministicRe = regexp.MustCompile(`(?m)^bwlint:deterministic\s*$`)

// Run implements Check.
func (c *Determinism) Run(prog *Program, report Reporter) {
	c.detoks = 0
	required := map[string]bool{}
	for _, p := range c.Required {
		required[p] = true
	}
	for _, pkg := range prog.Pkgs {
		marked := packageMarked(pkg)
		if required[pkg.ImportPath] && !marked {
			report(pkg.Files[0].Name.Pos(),
				"package %s produces committed goldens but its package comment lacks the bwlint:deterministic marker",
				pkg.Pkg.Name())
			continue
		}
		if !marked {
			continue
		}
		c.runPackage(prog, pkg, report)
	}
}

// packageMarked reports whether any file's package comment carries the
// deterministic marker.
func packageMarked(pkg *Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && deterministicRe.MatchString(f.Doc.Text()) {
			return true
		}
	}
	return false
}

func (c *Determinism) runPackage(prog *Program, pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		detok := lineDirectives(prog.Fset, f, "bwlint:detok")
		escaped := func(n ast.Node) bool {
			if reason := detok[prog.Fset.Position(n.Pos()).Line]; reason != "" {
				c.detoks++
				return true
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				pkgPath, name, ok := qualifiedCallee(pkg, st)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "time" && (name == "Now" || name == "Since"):
					if !escaped(st) {
						report(st.Pos(), "time.%s in a bwlint:deterministic package; thread a clock through the caller instead", name)
					}
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFunc(name):
					if !escaped(st) {
						report(st.Pos(), "global math/rand.%s in a bwlint:deterministic package; use a seeded rand.New(rand.NewSource(...)) instead", name)
					}
				}
			case *ast.RangeStmt:
				if !isMapExpr(pkg, st.X) {
					return true
				}
				if keyCollectLoop(st) || escaped(st) {
					return true
				}
				report(st.Pos(), "range over a map in a bwlint:deterministic package iterates in random order; sort the keys first")
			}
			return true
		})
	}
}

// qualifiedCallee resolves pkgname.Func calls to (import path, name).
func qualifiedCallee(pkg *Package, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pkg.Info.Uses[base].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// globalRandFunc reports whether a package-level math/rand function
// draws from the shared global source. Constructors are fine.
func globalRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// keyCollectLoop recognizes the sanctioned sort-the-keys idiom: a map
// range whose whole body appends the key to a slice.
func keyCollectLoop(st *ast.RangeStmt) bool {
	key, ok := st.Key.(*ast.Ident)
	if !ok || st.Value != nil || len(st.Body.List) != 1 {
		return false
	}
	assign, ok := st.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
