package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitHygiene machine-checks the bw unit discipline. The model's three
// quantities — Rate (bits per tick), Bits and Tick — are int64 *aliases*
// (internal/bw), so the compiler erases them and nothing stops code from
// comparing a queue length to a bandwidth or multiplying the wrong pair.
// Every such silent crossing skews the delay/utilization accounting the
// competitive-ratio experiments report.
//
// The check infers a unit for expressions from declared types (struct
// fields, parameters, results, typed vars, := from a known unit) and
// flags, outside internal/bw itself:
//
//   - comparisons, additions, subtractions and assignments mixing two
//     different known units;
//   - rate × tick products spelled as raw multiplication — the bits
//     moved over an interval must be bw.Volume(rate, ticks);
//   - bits ÷ tick quotients, raw or via bw.CeilDiv — the rate that
//     moves a backlog in an interval must be bw.RateOver(bits, ticks);
//   - calls passing an argument whose known unit differs from the
//     parameter's declared unit.
//
// The inference is deliberately conservative: untyped constants and
// expressions it cannot resolve have no unit and never produce a
// finding.
type UnitHygiene struct {
	// Skip selects packages exempt from the check (the unit-defining
	// package itself).
	Skip func(importPath string) bool
}

// NewUnitHygiene returns the check with its default scope.
func NewUnitHygiene() *UnitHygiene {
	return &UnitHygiene{Skip: func(path string) bool {
		return strings.HasSuffix(path, "internal/bw")
	}}
}

// Name implements Check.
func (*UnitHygiene) Name() string { return "unit-hygiene" }

// Doc implements Check.
func (*UnitHygiene) Doc() string {
	return "bw.Rate/Bits/Tick crossings must use the units.go helpers (bw.Volume, bw.RateOver)"
}

// unit is an inferred physical dimension.
type unit int8

const (
	unitNone unit = iota
	unitRate
	unitBits
	unitTick
)

func (u unit) String() string {
	switch u {
	case unitRate:
		return "bw.Rate"
	case unitBits:
		return "bw.Bits"
	case unitTick:
		return "bw.Tick"
	}
	return "unitless"
}

// unitVal is a unit, possibly one element-deep inside a slice.
type unitVal struct {
	u     unit
	slice bool
}

// funcUnits records a function signature's declared units.
type funcUnits struct {
	params   []unitVal
	variadic bool
	result   unitVal
}

// unitEnv is the program-wide inference state.
type unitEnv struct {
	info  *types.Info // current package's info during the walk
	objs  map[types.Object]unitVal
	funcs map[types.Object]funcUnits
}

// Run implements Check.
func (c *UnitHygiene) Run(prog *Program, report Reporter) {
	env := &unitEnv{
		objs:  map[types.Object]unitVal{},
		funcs: map[types.Object]funcUnits{},
	}
	// Pass A: record declared units across every loaded module package,
	// so selectors and calls into dependencies resolve.
	for _, pkg := range prog.All {
		env.info = pkg.Info
		for _, f := range pkg.Files {
			env.collectDecls(f)
		}
	}
	// Pass B: walk the linted packages.
	for _, pkg := range prog.Pkgs {
		if c.Skip(pkg.ImportPath) {
			continue
		}
		env.info = pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					env.checkBody(fd.Body, report)
				}
			}
		}
	}
}

// unitForTypeExpr maps a declared type's spelling to a unit.
func unitForTypeExpr(e ast.Expr) unitVal {
	s := types.ExprString(e)
	slice := false
	if rest, ok := strings.CutPrefix(s, "[]"); ok {
		slice = true
		s = rest
	}
	switch s {
	case "bw.Rate", "Rate":
		return unitVal{unitRate, slice}
	case "bw.Bits", "Bits":
		return unitVal{unitBits, slice}
	case "bw.Tick", "Tick":
		return unitVal{unitTick, slice}
	}
	return unitVal{}
}

// collectDecls records units for struct fields, vars, parameters and
// results declared in one file.
func (e *unitEnv) collectDecls(f *ast.File) {
	// Only bw-importing files (or bw itself) can spell the unit types.
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.StructType:
			for _, fld := range d.Fields.List {
				e.recordNames(fld.Names, unitForTypeExpr(fld.Type))
			}
		case *ast.ValueSpec:
			if d.Type != nil {
				e.recordNames(d.Names, unitForTypeExpr(d.Type))
			}
		case *ast.FuncDecl:
			e.recordFunc(d)
		case *ast.FuncLit:
			e.recordFieldList(d.Type.Params)
		}
		return true
	})
}

func (e *unitEnv) recordNames(names []*ast.Ident, uv unitVal) {
	if uv.u == unitNone {
		return
	}
	for _, name := range names {
		if obj := e.info.Defs[name]; obj != nil {
			e.objs[obj] = uv
		}
	}
}

func (e *unitEnv) recordFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		t := fld.Type
		if el, ok := t.(*ast.Ellipsis); ok {
			t = el.Elt
		}
		e.recordNames(fld.Names, unitForTypeExpr(t))
	}
}

// recordFunc stores parameter and result units for a function object.
func (e *unitEnv) recordFunc(fd *ast.FuncDecl) {
	e.recordFieldList(fd.Type.Params)
	e.recordFieldList(fd.Type.Results)
	obj := e.info.Defs[fd.Name]
	if obj == nil {
		return
	}
	var fu funcUnits
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			t := fld.Type
			if el, ok := t.(*ast.Ellipsis); ok {
				t = el.Elt
				fu.variadic = true
			}
			uv := unitForTypeExpr(t)
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				fu.params = append(fu.params, uv)
			}
		}
	}
	if res := fd.Type.Results; res != nil && len(res.List) == 1 && len(res.List[0].Names) <= 1 {
		fu.result = unitForTypeExpr(res.List[0].Type)
	}
	e.funcs[obj] = fu
}

// checkBody walks one function body reporting unit violations.
func (e *unitEnv) checkBody(body *ast.BlockStmt, report Reporter) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			e.checkAssign(st, report)
		case *ast.BinaryExpr:
			e.checkBinary(st, report)
		case *ast.CallExpr:
			e.checkCall(st, report)
		}
		return true
	})
}

func (e *unitEnv) checkAssign(st *ast.AssignStmt, report Reporter) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		rhs := st.Rhs[i]
		ru := e.exprUnit(rhs)
		if st.Tok == token.DEFINE {
			// Propagate inferred units into := locals.
			if id, ok := lhs.(*ast.Ident); ok && ru.u != unitNone {
				if obj := e.info.Defs[id]; obj != nil {
					e.objs[obj] = ru
				}
			}
			continue
		}
		lu := e.exprUnit(lhs)
		if lu.u != unitNone && ru.u != unitNone && !lu.slice && !ru.slice && lu.u != ru.u {
			report(st.Pos(), "assigning %s to %s mixes units; convert through a bw units.go helper", ru.u, lu.u)
		}
	}
}

func (e *unitEnv) checkBinary(be *ast.BinaryExpr, report Reporter) {
	x, y := e.exprUnit(be.X), e.exprUnit(be.Y)
	if x.slice || y.slice {
		return
	}
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.ADD, token.SUB:
		if x.u != unitNone && y.u != unitNone && x.u != y.u {
			report(be.Pos(), "%s %s %s mixes units; cross through a bw units.go helper (bw.Volume, bw.RateOver)",
				x.u, be.Op, y.u)
		}
	case token.MUL:
		if x.u == unitRate && y.u == unitTick || x.u == unitTick && y.u == unitRate {
			report(be.Pos(), "raw rate × ticks product; the bits moved over an interval is bw.Volume(rate, ticks)")
		}
	case token.QUO:
		if x.u == unitBits && y.u == unitTick {
			report(be.Pos(), "raw bits ÷ ticks quotient; the draining rate is bw.RateOver(bits, ticks)")
		}
	}
}

func (e *unitEnv) checkCall(call *ast.CallExpr, report Reporter) {
	obj := e.calleeObject(call)
	if obj == nil {
		return
	}
	// bw.CeilDiv(bits, ticks) is the unit crossing RateOver names.
	if obj.Name() == "CeilDiv" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/bw") &&
		len(call.Args) == 2 {
		if e.exprUnit(call.Args[0]).u == unitBits && e.exprUnit(call.Args[1]).u == unitTick {
			report(call.Pos(), "bw.CeilDiv on bits and ticks; the draining rate is bw.RateOver(bits, ticks)")
			return
		}
	}
	fu, ok := e.funcs[obj]
	if !ok || fu.variadic || len(fu.params) != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		want := fu.params[i]
		got := e.exprUnit(arg)
		if want.u != unitNone && got.u != unitNone && want.slice == got.slice && want.u != got.u {
			report(arg.Pos(), "argument %d of %s is declared %s but receives %s", i+1, obj.Name(), want.u, got.u)
		}
	}
}

// calleeObject resolves the called function's object (nil for builtins,
// type conversions and dynamic calls).
func (e *unitEnv) calleeObject(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := e.info.Uses[fn]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := selectedObject(e.info, fn); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// exprUnit infers an expression's unit, unitNone when unknown.
func (e *unitEnv) exprUnit(expr ast.Expr) unitVal {
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := e.info.Uses[x]; obj != nil {
			return e.objs[obj]
		}
		if obj := e.info.Defs[x]; obj != nil {
			return e.objs[obj]
		}
	case *ast.SelectorExpr:
		if obj := selectedObject(e.info, x); obj != nil {
			return e.objs[obj]
		}
	case *ast.ParenExpr:
		return e.exprUnit(x.X)
	case *ast.UnaryExpr:
		return e.exprUnit(x.X)
	case *ast.IndexExpr:
		if uv := e.exprUnit(x.X); uv.slice {
			return unitVal{uv.u, false}
		}
	case *ast.CallExpr:
		return e.callUnit(x)
	case *ast.BinaryExpr:
		return e.binaryUnit(x)
	}
	return unitVal{}
}

// callUnit infers the unit of a call result: declared result units,
// unit-type conversions, and make of a unit slice.
func (e *unitEnv) callUnit(call *ast.CallExpr) unitVal {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn.Name == "make" && len(call.Args) >= 1 {
			return unitForTypeExpr(call.Args[0])
		}
		if obj := e.info.Uses[fn]; obj != nil {
			if _, ok := obj.(*types.TypeName); ok {
				return unitForTypeExpr(fn)
			}
			return e.funcs[obj].result
		}
	case *ast.SelectorExpr:
		obj := selectedObject(e.info, fn)
		if obj == nil {
			return unitVal{}
		}
		if _, ok := obj.(*types.TypeName); ok {
			return unitForTypeExpr(fn)
		}
		return e.funcs[obj].result
	}
	return unitVal{}
}

// binaryUnit propagates units through arithmetic so larger expressions
// stay checkable: same-unit ± keeps the unit, rate×tick and tick×rate
// make bits, bits÷tick makes a rate, and an operand without a unit
// (untyped constant) is transparent.
func (e *unitEnv) binaryUnit(be *ast.BinaryExpr) unitVal {
	x, y := e.exprUnit(be.X), e.exprUnit(be.Y)
	if x.slice || y.slice {
		return unitVal{}
	}
	switch be.Op {
	case token.ADD, token.SUB:
		if x.u == y.u {
			return unitVal{x.u, false}
		}
		if x.u == unitNone {
			return unitVal{y.u, false}
		}
		if y.u == unitNone {
			return unitVal{x.u, false}
		}
	case token.MUL:
		if x.u == unitRate && y.u == unitTick || x.u == unitTick && y.u == unitRate {
			return unitVal{unitBits, false}
		}
		if x.u == unitNone {
			return unitVal{y.u, false}
		}
		if y.u == unitNone {
			return unitVal{x.u, false}
		}
	case token.QUO:
		if x.u == unitBits && y.u == unitTick {
			return unitVal{unitRate, false}
		}
		if y.u == unitNone {
			return unitVal{x.u, false}
		}
	}
	return unitVal{}
}
